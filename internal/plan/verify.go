package plan

import "fmt"

// Verify checks that a plan is executable and complete for its workload:
//
//  1. every output chunk is assigned to exactly one tile, and Locals lists
//     match the Home assignment;
//  2. per-tile, per-processor accumulator memory never exceeds the machine
//     capacity (except for a single chunk that is itself larger than the
//     capacity, which necessarily overflows under any tiling);
//  3. every (input chunk, target output chunk) aggregation is covered
//     exactly once: the input is read by its owning node in the output's
//     tile, the accumulator is allocated where the aggregation runs, and
//     replicated strategies aggregate at the reader while distributed
//     strategies forward to the home;
//  4. DA allocates no ghosts.
//
// The execution engines call Verify before running a plan; the property
// tests drive it with randomized workloads.
func Verify(p *Plan, w *Workload) error {
	procs := p.Machine.Procs
	if len(p.TileOf) != len(w.Outputs) || len(p.Home) != len(w.Outputs) {
		return fmt.Errorf("plan: TileOf/Home length mismatch with %d outputs", len(w.Outputs))
	}

	// 1. Tile partition and Locals/Home consistency.
	seen := make([]bool, len(w.Outputs))
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		if len(t.Locals) != procs || len(t.Ghosts) != procs || len(t.Reads) != procs || len(t.Forwards) != procs {
			return fmt.Errorf("plan: tile %d not sized for %d processors", ti, procs)
		}
		for _, c := range t.Outputs {
			if int(c) >= len(w.Outputs) || c < 0 {
				return fmt.Errorf("plan: tile %d lists output %d out of range", ti, c)
			}
			if seen[c] {
				return fmt.Errorf("plan: output %d in more than one tile", c)
			}
			seen[c] = true
			if p.TileOf[c] != int32(ti) {
				return fmt.Errorf("plan: output %d listed in tile %d but TileOf says %d", c, ti, p.TileOf[c])
			}
		}
		inLocals := make(map[int32]int32)
		for q := 0; q < procs; q++ {
			for _, c := range t.Locals[q] {
				if prev, dup := inLocals[c]; dup {
					return fmt.Errorf("plan: output %d local on both %d and %d in tile %d", c, prev, q, ti)
				}
				inLocals[c] = int32(q)
				if p.Home[c] != int32(q) {
					return fmt.Errorf("plan: output %d local on %d but homed on %d", c, q, p.Home[c])
				}
			}
		}
		for _, c := range t.Outputs {
			if _, ok := inLocals[c]; !ok {
				return fmt.Errorf("plan: output %d in tile %d has no local allocation", c, ti)
			}
		}
	}
	for c := range seen {
		if !seen[c] {
			return fmt.Errorf("plan: output %d not assigned to any tile", c)
		}
	}

	// 2. Memory bound.
	var maxChunk int64
	for o := range w.Outputs {
		if s := w.accSize(int32(o)); s > maxChunk {
			maxChunk = s
		}
	}
	limit := p.Machine.AccMemBytes
	if maxChunk > limit {
		limit = maxChunk
	}
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		for q := 0; q < procs; q++ {
			var used int64
			for _, c := range t.Locals[q] {
				used += w.accSize(c)
			}
			for _, c := range t.Ghosts[q] {
				used += w.accSize(c)
			}
			if used > limit {
				return fmt.Errorf("plan: tile %d processor %d allocates %d bytes > limit %d", ti, q, used, limit)
			}
		}
	}

	// 4. DA allocates no ghosts.
	if p.Strategy == DA || p.Strategy == Hybrid {
		for ti := range p.Tiles {
			for q := 0; q < procs; q++ {
				if len(p.Tiles[ti].Ghosts[q]) > 0 {
					return fmt.Errorf("plan: %v tile %d processor %d has ghosts", p.Strategy, ti, q)
				}
			}
		}
	}

	// 3. Coverage. Build per-tile lookup sets once.
	type tileSets struct {
		alloc map[[2]int32]bool // (proc, output) allocated (local or ghost)
		reads map[[2]int32]bool // (proc, input) read
		fwds  map[[3]int32]bool // (proc, input, dest)
	}
	sets := make([]tileSets, len(p.Tiles))
	for ti := range p.Tiles {
		t := &p.Tiles[ti]
		s := tileSets{
			alloc: make(map[[2]int32]bool),
			reads: make(map[[2]int32]bool),
			fwds:  make(map[[3]int32]bool),
		}
		for q := 0; q < procs; q++ {
			for _, c := range t.Locals[q] {
				s.alloc[[2]int32{int32(q), c}] = true
			}
			for _, c := range t.Ghosts[q] {
				s.alloc[[2]int32{int32(q), c}] = true
			}
			for _, i := range t.Reads[q] {
				s.reads[[2]int32{int32(q), i}] = true
			}
			for _, f := range t.Forwards[q] {
				s.fwds[[3]int32{int32(q), f.Input, f.Dest}] = true
			}
		}
		sets[ti] = s
	}
	replicated := p.Strategy == FRA || p.Strategy == SRA
	for i, ts := range w.Targets {
		reader := w.Inputs[i].Node
		for _, o := range ts {
			ti := p.TileOf[o]
			s := &sets[ti]
			if !s.reads[[2]int32{reader, int32(i)}] {
				return fmt.Errorf("plan: input %d not read by node %d in tile %d for output %d", i, reader, ti, o)
			}
			home := p.Home[o]
			if replicated {
				// Aggregation runs at the reader into its replica.
				if !s.alloc[[2]int32{reader, o}] {
					return fmt.Errorf("plan: %v: no accumulator for output %d on reader %d in tile %d", p.Strategy, o, reader, ti)
				}
			} else if reader != home {
				if !s.fwds[[3]int32{reader, int32(i), home}] {
					return fmt.Errorf("plan: %v: input %d not forwarded %d->%d in tile %d for output %d", p.Strategy, i, reader, home, ti, o)
				}
			}
		}
	}
	return nil
}
