package plan

// Stats summarizes a plan: the quantities §3 and §4 reason about when
// comparing strategies (tile counts, ghost allocations, forwarded input
// chunks, repeated retrievals). The execution engines compute timing; these
// are the structural counts that drive it.
type Stats struct {
	Tiles int
	// GhostChunks is the total number of ghost accumulator allocations
	// across all tiles and processors.
	GhostChunks int
	// GhostBytes is the total size of those allocations.
	GhostBytes int64
	// Forwards is the number of input-chunk transfers; ForwardBytes their
	// volume.
	Forwards     int
	ForwardBytes int64
	// Reads is the total number of input chunk retrievals; ReadBytes their
	// volume. An input chunk appearing in k tiles is counted k times
	// (§2.3: "an input chunk may be retrieved multiple times during
	// execution of the processing loop").
	Reads     int
	ReadBytes int64
	// RereadInputs counts input retrievals beyond the first per chunk —
	// the tile-boundary-crossing cost the Hilbert tiling order minimizes.
	RereadInputs int
	// MaxProcReadBytes is the largest per-processor retrieval volume, an
	// I/O balance indicator.
	MaxProcReadBytes int64
	// OutputShips counts finished output chunks homed away from their owner
	// (hybrid only) that must be shipped during output handling.
	OutputShips int
}

// ComputeStats derives Stats for a plan over its workload.
func ComputeStats(p *Plan, w *Workload) Stats {
	var s Stats
	s.Tiles = len(p.Tiles)
	seenRead := make(map[int32]bool)
	procRead := make([]int64, p.Machine.Procs)
	for _, t := range p.Tiles {
		for q := range t.Ghosts {
			for _, c := range t.Ghosts[q] {
				s.GhostChunks++
				s.GhostBytes += w.accSize(c)
			}
		}
		for q := range t.Reads {
			for _, i := range t.Reads[q] {
				s.Reads++
				s.ReadBytes += w.Inputs[i].Bytes
				procRead[q] += w.Inputs[i].Bytes
				if seenRead[i] {
					s.RereadInputs++
				}
				seenRead[i] = true
			}
		}
		for q := range t.Forwards {
			for _, f := range t.Forwards[q] {
				s.Forwards++
				s.ForwardBytes += w.Inputs[f.Input].Bytes
			}
		}
	}
	for o, home := range p.Home {
		if home != w.Outputs[o].Node {
			s.OutputShips++
		}
	}
	for _, b := range procRead {
		if b > s.MaxProcReadBytes {
			s.MaxProcReadBytes = b
		}
	}
	return s
}
