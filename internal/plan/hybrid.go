package plan

// planHybrid implements the graph-partitioned strategy the paper sketches as
// future work (§6): "the tiling and workload partitioning steps can be
// formulated as a multi-graph partitioning problem, with input and output
// chunks representing the graph vertices, and the mapping between input and
// output chunks ... representing the graph edges."
//
// FRA/SRA put all processing where the *input* chunks live; DA puts it where
// the *output* chunks live. The hybrid picks, per accumulator chunk, a home
// processor by edge affinity: the processor whose local input chunks
// contribute the most bytes to that output chunk, penalized by the
// aggregation load already assigned to it. Input chunks are forwarded to the
// home (as in DA) but the dominant contributor forwards nothing; if the home
// differs from the owner, the finished output chunk is shipped to the owner
// during output handling (one accumulator-sized message instead of many
// input-sized ones).
//
// Tiling mirrors DA: per-home memory counters, no replication.
func (pl *Planner) planHybrid(w *Workload, order []int32) (*Plan, error) {
	procs := pl.Machine.Procs
	capacity := pl.Machine.AccMemBytes
	sources := w.Sources()

	p := &Plan{
		Strategy: Hybrid,
		Machine:  pl.Machine,
		TileOf:   make([]int32, len(w.Outputs)),
		Home:     make([]int32, len(w.Outputs)),
	}
	tileOf := make([]int, procs)
	remaining := make([]int64, procs)
	load := make([]int64, procs) // aggregation bytes assigned per processor
	for q := range tileOf {
		tileOf[q] = -1
	}
	ensureTile := func(t int) {
		for len(p.Tiles) <= t {
			p.Tiles = append(p.Tiles, newTile(procs))
		}
	}
	readSeen := make(map[[2]int32]bool)
	fwdSeen := make(map[[3]int32]bool)

	// Mean aggregation bytes per processor, for the load penalty scale.
	var totalBytes int64
	for i, ts := range w.Targets {
		totalBytes += w.Inputs[i].Bytes * int64(len(ts))
	}
	meanLoad := totalBytes / int64(procs)
	if meanLoad == 0 {
		meanLoad = 1
	}

	affinity := make([]int64, procs)
	for _, c := range order {
		// Home = argmax over processors of (local contribution − load
		// penalty). The owner gets a small bonus: homing at the owner saves
		// shipping the finished chunk.
		for q := range affinity {
			affinity[q] = 0
		}
		for _, i := range sources[c] {
			affinity[w.Inputs[i].Node] += w.Inputs[i].Bytes
		}
		owner := w.Outputs[c].Node
		affinity[owner] += w.accSize(c)
		best := int(owner)
		var bestScore int64
		for q := 0; q < procs; q++ {
			if pl.excluded(int32(q)) {
				continue
			}
			// Penalize processors already loaded beyond the mean so work
			// spreads even when affinity is concentrated.
			over := load[q] - meanLoad
			if over < 0 {
				over = 0
			}
			score := affinity[q] - over
			if q == best {
				bestScore = score
			}
			if score > bestScore || (score == bestScore && q < best) {
				best, bestScore = q, score
			}
		}
		home := best
		size := w.accSize(c)
		if tileOf[home] < 0 || remaining[home] < size && remaining[home] < capacity {
			tileOf[home]++
			remaining[home] = capacity
		}
		remaining[home] -= size
		t := tileOf[home]
		ensureTile(t)
		tile := &p.Tiles[t]
		tile.Outputs = append(tile.Outputs, c)
		p.TileOf[c] = int32(t)
		p.Home[c] = int32(home)
		tile.Locals[home] = append(tile.Locals[home], c)

		for _, i := range sources[c] {
			reader := w.Inputs[i].Node
			load[home] += w.Inputs[i].Bytes
			rk := [2]int32{int32(t), i}
			if !readSeen[rk] {
				readSeen[rk] = true
				tile.Reads[reader] = append(tile.Reads[reader], i)
			}
			if int(reader) != home {
				fk := [3]int32{int32(t), i, int32(home)}
				if !fwdSeen[fk] {
					fwdSeen[fk] = true
					tile.Forwards[reader] = append(tile.Forwards[reader], Forward{Input: i, Dest: int32(home)})
				}
			}
		}
	}
	return p, nil
}
