// Package plan implements ADR's query planning service: the tiling and
// workload partitioning algorithms that are the core contribution of the
// paper (§3). A plan specifies how parts of the final output are computed
// and the order in which input data chunks are retrieved for processing
// (§2.3).
//
// Planning happens in two steps. In the tiling step, the output dataset is
// partitioned into tiles, each small enough that its accumulator fits in the
// memory set aside for it; output chunks are consumed in Hilbert-curve order
// of their MBR mid-points to keep tiles spatially compact. In the workload
// partitioning step, the aggregation work for each tile is split across
// processors. The three strategies of §3 differ in where aggregation runs
// and which accumulator chunks are replicated:
//
//   - FRA (fully replicated accumulator): every processor allocates every
//     accumulator chunk of the tile and aggregates its local input chunks;
//     ghosts are combined into the owner during the global combine phase.
//   - SRA (sparsely replicated accumulator): like FRA, but a ghost is
//     allocated on a processor only if that processor has at least one input
//     chunk projecting to it.
//   - DA (distributed accumulator): no replication; every input chunk is
//     forwarded to the owners of the output chunks it projects to, and all
//     aggregation happens at the owner.
//
// The package also implements the hybrid graph-partitioned strategy the
// paper sketches as future work (§6).
package plan

import (
	"fmt"
	"sort"
	"strings"

	"adr/internal/chunk"
	"adr/internal/hilbert"
	"adr/internal/space"
)

// Strategy selects a tiling + workload partitioning algorithm.
type Strategy int

const (
	// FRA is the fully replicated accumulator strategy (paper §3.1, Fig 4).
	FRA Strategy = iota
	// SRA is the sparsely replicated accumulator strategy (§3.2, Fig 5).
	SRA
	// DA is the distributed accumulator strategy (§3.3, Fig 6).
	DA
	// Hybrid is the graph-partitioned strategy sketched in §6.
	Hybrid
	// Auto defers the choice to the cost model (§6: "guide and automate the
	// selection of an appropriate strategy"): the query is planned under
	// every fixed strategy, each plan is costed, and the cheapest executes.
	// Auto is a request, not a plan — it must be resolved to a fixed
	// strategy (costmodel.Select) before Planner.Plan.
	Auto
)

// String returns the strategy's paper abbreviation.
func (s Strategy) String() string {
	switch s {
	case FRA:
		return "FRA"
	case SRA:
		return "SRA"
	case DA:
		return "DA"
	case Hybrid:
		return "HYBRID"
	case Auto:
		return "AUTO"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy parses a strategy name, case-insensitively ("fra" and "FRA"
// both select FRA).
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToUpper(s) {
	case "FRA":
		return FRA, nil
	case "SRA":
		return SRA, nil
	case "DA":
		return DA, nil
	case "HYBRID":
		return Hybrid, nil
	case "AUTO":
		return Auto, nil
	}
	return 0, fmt.Errorf("plan: unknown strategy %q (valid: FRA, SRA, DA, HYBRID, AUTO)", s)
}

// Strategies lists all implemented strategies in paper order.
var Strategies = []Strategy{FRA, SRA, DA, Hybrid}

// Machine describes the back-end resources the planner partitions work over.
type Machine struct {
	// Procs is the number of back-end processors.
	Procs int
	// AccMemBytes is the memory each processor sets aside for accumulator
	// chunks (§2.3: tiles are sized so "the total size of the chunks in a
	// tile is less than the amount of memory available for output data").
	AccMemBytes int64
}

// Workload is the planner's view of one range query after index lookup: the
// selected input and output chunks and the chunk-level mapping between them.
// Chunks are referred to by position in these slices, not by chunk.ID, so
// that a query selecting a subset of a dataset stays dense.
type Workload struct {
	Inputs  []chunk.Meta
	Outputs []chunk.Meta
	// Targets[i] lists, for input chunk position i, the output chunk
	// positions its items project to under the query's Map function
	// (ascending, no duplicates). It is the chunk-granularity Map relation
	// of Fig 3 step 7.
	Targets [][]int32
	// AccBytes[o] is the size of the accumulator chunk for output position
	// o. If nil, the output chunk's own size is used (accumulators mirror
	// output chunks, as in the paper's applications).
	AccBytes []int64
}

// Validate checks structural consistency of the workload.
func (w *Workload) Validate() error {
	if len(w.Targets) != len(w.Inputs) {
		return fmt.Errorf("plan: %d inputs but %d target lists", len(w.Inputs), len(w.Targets))
	}
	if w.AccBytes != nil && len(w.AccBytes) != len(w.Outputs) {
		return fmt.Errorf("plan: %d outputs but %d accumulator sizes", len(w.Outputs), len(w.AccBytes))
	}
	for i, ts := range w.Targets {
		prev := int32(-1)
		for _, t := range ts {
			if t < 0 || int(t) >= len(w.Outputs) {
				return fmt.Errorf("plan: input %d targets output %d, out of range", i, t)
			}
			if t <= prev {
				return fmt.Errorf("plan: input %d targets not strictly ascending", i)
			}
			prev = t
		}
	}
	return nil
}

// AccSize returns the accumulator size for output position o.
func (w *Workload) AccSize(o int32) int64 {
	if w.AccBytes != nil {
		return w.AccBytes[o]
	}
	return w.Outputs[o].Bytes
}

// accSize is the internal alias used by the planners.
func (w *Workload) accSize(o int32) int64 { return w.AccSize(o) }

// Sources returns the inverse of Targets: for each output position, the
// input positions projecting to it (ascending). This is the inverse mapping
// §3.1 calls for ("either an efficient inverse mapping function or an
// efficient search method ... must return the input chunks that map to a
// given output chunk").
func (w *Workload) Sources() [][]int32 {
	src := make([][]int32, len(w.Outputs))
	for i, ts := range w.Targets {
		for _, t := range ts {
			src[t] = append(src[t], int32(i))
		}
	}
	return src
}

// Forward is one interprocessor input-chunk transfer in a DA or hybrid plan:
// after reading input chunk Input from local disk, the reading processor
// sends it to processor Dest (which owns at least one of the chunk's target
// accumulators in the current tile).
type Forward struct {
	Input int32
	Dest  int32
}

// Tile is the per-tile work assignment for every processor.
type Tile struct {
	// Outputs lists the output chunk positions processed in this tile, in
	// tiling (Hilbert) order.
	Outputs []int32
	// Locals[p] lists the accumulator chunks processor p allocates for
	// output chunks it owns.
	Locals [][]int32
	// Ghosts[p] lists the accumulator chunks processor p allocates for
	// output chunks it does not own. Empty for DA.
	Ghosts [][]int32
	// Reads[p] lists the input chunk positions p retrieves from its local
	// disks during this tile, in retrieval order.
	Reads [][]int32
	// Forwards[p] lists the input-chunk transfers p performs after reading
	// (DA and hybrid only).
	Forwards [][]Forward
}

// Plan is a complete query plan: the tile sequence plus bookkeeping shared
// by the execution engines.
type Plan struct {
	Strategy Strategy
	Machine  Machine
	Tiles    []Tile
	// TileOf[o] is the tile index output position o was assigned to.
	TileOf []int32
	// Home[o] is the processor responsible for combining the final value of
	// output position o and running Output handling for it. For FRA, SRA
	// and DA the home is the owning node; the hybrid strategy may home an
	// accumulator away from its owner for locality, in which case the final
	// output chunk is shipped to the owner during output handling.
	Home []int32
}

// NumTiles returns the number of tiles in the plan.
func (p *Plan) NumTiles() int { return len(p.Tiles) }

// Planner builds plans for workloads on a machine.
type Planner struct {
	Machine Machine
	// Exclude is the per-query node-exclusion set for degraded-mode planning:
	// processors known to be dead. Excluded processors are assigned no ghosts
	// (FRA) and are never chosen as hybrid homes. The workload must already
	// have been remapped away from excluded nodes (see Degrade) — Plan rejects
	// a workload whose chunk metas still reference an excluded processor.
	Exclude map[int32]bool
}

// excluded reports whether processor q is in the exclusion set.
func (pl *Planner) excluded(q int32) bool { return pl.Exclude[q] }

// NewPlanner returns a planner for the given machine. AccMemBytes must be
// positive and Procs at least 1.
func NewPlanner(m Machine) (*Planner, error) {
	if m.Procs < 1 {
		return nil, fmt.Errorf("plan: machine has %d processors", m.Procs)
	}
	if m.AccMemBytes <= 0 {
		return nil, fmt.Errorf("plan: non-positive accumulator memory %d", m.AccMemBytes)
	}
	return &Planner{Machine: m}, nil
}

// Plan runs the tiling and workload partitioning step for the strategy.
func (pl *Planner) Plan(s Strategy, w *Workload) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := pl.checkOwners(w); err != nil {
		return nil, err
	}
	order := TilingOrder(w.Outputs)
	switch s {
	case FRA:
		return pl.planFRA(w, order)
	case SRA:
		return pl.planSRA(w, order)
	case DA:
		return pl.planDA(w, order)
	case Hybrid:
		return pl.planHybrid(w, order)
	case Auto:
		return nil, fmt.Errorf("plan: AUTO is not a plannable strategy; resolve it to a fixed strategy first (costmodel.Select)")
	default:
		return nil, fmt.Errorf("plan: unknown strategy %v", s)
	}
}

// checkOwners verifies every chunk's owning node is a valid, non-excluded
// processor.
func (pl *Planner) checkOwners(w *Workload) error {
	for i, m := range w.Inputs {
		if m.Node < 0 || int(m.Node) >= pl.Machine.Procs {
			return fmt.Errorf("plan: input %d owned by node %d, machine has %d", i, m.Node, pl.Machine.Procs)
		}
		if pl.excluded(m.Node) {
			return fmt.Errorf("plan: input %d owned by excluded node %d", i, m.Node)
		}
	}
	for o, m := range w.Outputs {
		if m.Node < 0 || int(m.Node) >= pl.Machine.Procs {
			return fmt.Errorf("plan: output %d owned by node %d, machine has %d", o, m.Node, pl.Machine.Procs)
		}
		if pl.excluded(m.Node) {
			return fmt.Errorf("plan: output %d owned by excluded node %d", o, m.Node)
		}
	}
	return nil
}

// TilingOrder returns output chunk positions sorted by the Hilbert index of
// their MBR mid-points (§3: "the mid-point of the bounding box of each
// output chunk is used to generate a Hilbert curve index. The chunks are
// sorted with respect to this index, and selected in this order for
// tiling"). Ties and quantization failures fall back to position order.
func TilingOrder(outputs []chunk.Meta) []int32 {
	order := make([]int32, len(outputs))
	for i := range order {
		order[i] = int32(i)
	}
	if len(outputs) == 0 {
		return order
	}
	var bounds space.Rect
	for _, m := range outputs {
		bounds = bounds.Union(m.MBR)
	}
	q, err := hilbert.NewQuantizer(bounds, hilbert.OrderFor(bounds.Dims))
	if err != nil {
		return order
	}
	keys := make([]uint64, len(outputs))
	for i, m := range outputs {
		k, kerr := q.Index(m.MBR.Center())
		if kerr != nil {
			k = uint64(i)
		}
		keys[i] = k
	}
	sort.SliceStable(order, func(a, b int) bool {
		return keys[order[a]] < keys[order[b]]
	})
	return order
}

// newTile allocates an empty per-processor tile layout.
func newTile(procs int) Tile {
	return Tile{
		Locals:   make([][]int32, procs),
		Ghosts:   make([][]int32, procs),
		Reads:    make([][]int32, procs),
		Forwards: make([][]Forward, procs),
	}
}

// appendUniqueRead appends input position i to reads if not already present.
// Read lists are built in output-chunk order so repeats are adjacent only by
// accident; a per-tile seen-set is maintained by callers for O(1) dedup.
func appendUniqueRead(reads []int32, seen map[int32]bool, i int32) []int32 {
	if seen[i] {
		return reads
	}
	seen[i] = true
	return append(reads, i)
}
