package plan

// planFRA implements the fully replicated accumulator strategy (paper §3.1,
// Fig 4). Each processor carries out the processing associated with its
// local input chunks; every accumulator chunk of the current tile is
// replicated on every processor, so no input chunk ever crosses the network.
// Partial results in the ghost copies are combined into the owner during the
// global combine phase.
//
// Tiling follows Fig 4 exactly: a single tile counter, capacity equal to the
// minimum accumulator memory over all processors (the machine is uniform, so
// that is Machine.AccMemBytes), and output chunks consumed in Hilbert order.
// A chunk that does not fit opens the next tile; a single chunk larger than
// the capacity still receives a tile of its own (the paper assumes chunks
// are sized well below node memory).
func (pl *Planner) planFRA(w *Workload, order []int32) (*Plan, error) {
	procs := pl.Machine.Procs
	capacity := pl.Machine.AccMemBytes
	sources := w.Sources()

	p := &Plan{
		Strategy: FRA,
		Machine:  pl.Machine,
		TileOf:   make([]int32, len(w.Outputs)),
		Home:     make([]int32, len(w.Outputs)),
	}
	var used int64
	cur := -1 // current tile index; forces the first chunk to open tile 0
	var readSeen []map[int32]bool

	openTile := func() {
		p.Tiles = append(p.Tiles, newTile(procs))
		cur = len(p.Tiles) - 1
		readSeen = make([]map[int32]bool, procs)
		for i := range readSeen {
			readSeen[i] = make(map[int32]bool)
		}
		used = 0
	}

	for _, c := range order {
		size := w.accSize(c)
		if cur < 0 || used+size > capacity && used > 0 {
			openTile()
		}
		used += size
		t := &p.Tiles[cur]
		t.Outputs = append(t.Outputs, c)
		p.TileOf[c] = int32(cur)

		owner := w.Outputs[c].Node
		p.Home[c] = owner
		t.Locals[owner] = append(t.Locals[owner], c)
		for q := 0; q < procs; q++ {
			if int32(q) != owner && !pl.excluded(int32(q)) {
				t.Ghosts[q] = append(t.Ghosts[q], c)
			}
		}
		// Every processor retrieves its own local input chunks that map to
		// chunk c (§3.1: "each processor generates partial results using its
		// local input chunks"). An input chunk mapping to several outputs in
		// the same tile is retrieved once.
		for _, i := range sources[c] {
			q := w.Inputs[i].Node
			t.Reads[q] = appendUniqueRead(t.Reads[q], readSeen[q], i)
		}
	}
	if cur < 0 && len(w.Outputs) == 0 {
		// A query with no output chunks still yields an empty, valid plan.
		return p, nil
	}
	return p, nil
}
