package plan

// planDA implements the distributed accumulator strategy (paper §3.3,
// Fig 6). Accumulator chunks are never replicated: each tile's output chunks
// are partitioned into disjoint working sets — the local output chunks of
// each processor — and all aggregation for an output chunk runs on its
// owner. Remote input chunks that project to an output chunk are forwarded
// to the owner during the local reduction phase; because a mapping function
// may project an input chunk to multiple output chunks, an input chunk may
// be forwarded to multiple processors.
//
// Tiling follows Fig 6: a per-processor tile counter Tile(p) advanced when
// that processor's accumulator memory fills. Because no ghosts are
// allocated, DA packs more output chunks per tile and therefore produces
// fewer tiles than FRA or SRA, so fewer input chunks are retrieved multiple
// times. The global tile count is the maximum of the per-processor counters
// (Fig 6 line 17).
func (pl *Planner) planDA(w *Workload, order []int32) (*Plan, error) {
	procs := pl.Machine.Procs
	capacity := pl.Machine.AccMemBytes
	sources := w.Sources()

	p := &Plan{
		Strategy: DA,
		Machine:  pl.Machine,
		TileOf:   make([]int32, len(w.Outputs)),
		Home:     make([]int32, len(w.Outputs)),
	}
	tileOf := make([]int, procs) // Tile(p), 0-based; -1 until first chunk
	remaining := make([]int64, procs)
	for q := range tileOf {
		tileOf[q] = -1
	}

	// ensureTile grows the global tile list to include index t.
	ensureTile := func(t int) {
		for len(p.Tiles) <= t {
			p.Tiles = append(p.Tiles, newTile(procs))
		}
	}

	// Per-tile, per-processor dedup of reads and forwards: an input chunk
	// that projects to several output chunks in the same tile is read once
	// and sent to each destination processor at most once.
	readSeen := make(map[[2]int32]bool) // (tile, input) on reader
	fwdSeen := make(map[[3]int32]bool)  // (tile, input, dest)

	for _, c := range order {
		owner := int(w.Outputs[c].Node)
		size := w.accSize(c)
		if tileOf[owner] < 0 || remaining[owner] < size && remaining[owner] < capacity {
			tileOf[owner]++
			remaining[owner] = capacity
		}
		remaining[owner] -= size
		t := tileOf[owner]
		ensureTile(t)
		tile := &p.Tiles[t]
		tile.Outputs = append(tile.Outputs, c)
		p.TileOf[c] = int32(t)
		p.Home[c] = int32(owner)
		tile.Locals[owner] = append(tile.Locals[owner], c)

		// All local and remote input chunks that map to c are retrieved and
		// processed by the owner for this tile (Fig 6 line 15): the reader
		// is the input chunk's own node, which forwards to the owner when
		// they differ.
		for _, i := range sources[c] {
			reader := w.Inputs[i].Node
			rk := [2]int32{int32(t), i}
			if !readSeen[rk] {
				readSeen[rk] = true
				tile.Reads[reader] = append(tile.Reads[reader], i)
			}
			if int(reader) != owner {
				fk := [3]int32{int32(t), i, int32(owner)}
				if !fwdSeen[fk] {
					fwdSeen[fk] = true
					tile.Forwards[reader] = append(tile.Forwards[reader], Forward{Input: i, Dest: int32(owner)})
				}
			}
		}
	}
	return p, nil
}
