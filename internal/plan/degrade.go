package plan

import (
	"fmt"

	"adr/internal/chunk"
)

// NoHolderError reports that degraded-mode re-planning is impossible: a
// selected chunk's only surviving copies all live on excluded (dead) nodes.
// The engine falls back to the mesh-wide abort of the unreplicated failure
// model when it sees this error.
type NoHolderError struct {
	Dataset string
	Chunk   chunk.ID
	Node    int32 // the excluded node holding the (last) copy
}

func (e *NoHolderError) Error() string {
	return fmt.Sprintf("plan: chunk %s/%d has no surviving holder (node %d excluded)",
		e.Dataset, e.Chunk, e.Node)
}

// Degrade rewrites a workload's chunk placement so that no chunk meta
// references an excluded processor, using the replica holder lists recorded
// at load time (chained declustering; see decluster.Replicate):
//
//   - An input chunk owned by an excluded node is remapped to its first
//     surviving holder disk. If every holder's node is excluded, Degrade
//     fails with *NoHolderError — the query cannot be answered degraded.
//   - An output chunk owned by an excluded node is remapped the same way
//     when it has surviving holders; an output with no recorded replicas
//     (the common case: accumulators materialized fresh by the query) is
//     re-homed to the next live processor around the ring, keeping its
//     intra-node disk offset.
//
// The input workload is not modified; the returned workload shares Targets
// and AccBytes with it. disksPerNode maps global disks to nodes
// (node = disk / disksPerNode).
func Degrade(m Machine, w *Workload, excluded map[int32]bool, disksPerNode int) (*Workload, error) {
	if disksPerNode < 1 {
		disksPerNode = 1
	}
	live := 0
	for q := 0; q < m.Procs; q++ {
		if !excluded[int32(q)] {
			live++
		}
	}
	if live == 0 {
		return nil, fmt.Errorf("plan: all %d processors excluded", m.Procs)
	}
	out := &Workload{
		Inputs:   make([]chunk.Meta, len(w.Inputs)),
		Outputs:  make([]chunk.Meta, len(w.Outputs)),
		Targets:  w.Targets,
		AccBytes: w.AccBytes,
	}
	copy(out.Inputs, w.Inputs)
	copy(out.Outputs, w.Outputs)
	remap := func(c *chunk.Meta, isInput bool) error {
		if !excluded[c.Node] {
			return nil
		}
		for _, h := range c.Holders {
			n := h / int32(disksPerNode)
			if !excluded[n] {
				c.Disk, c.Node = h, n
				return nil
			}
		}
		if isInput {
			return &NoHolderError{Dataset: c.Dataset, Chunk: c.ID, Node: c.Node}
		}
		// Fresh output accumulator: any live home works; rotate to the next
		// live processor so re-homed outputs spread instead of piling up.
		for step := 1; step < m.Procs; step++ {
			n := (c.Node + int32(step)) % int32(m.Procs)
			if !excluded[n] {
				c.Node = n
				c.Disk = n*int32(disksPerNode) + c.Disk%int32(disksPerNode)
				return nil
			}
		}
		return fmt.Errorf("plan: no live processor for output chunk %s/%d", c.Dataset, c.ID)
	}
	for i := range out.Inputs {
		if err := remap(&out.Inputs[i], true); err != nil {
			return nil, err
		}
	}
	for o := range out.Outputs {
		if err := remap(&out.Outputs[o], false); err != nil {
			return nil, err
		}
	}
	return out, nil
}
