package plan

// planSRA implements the sparsely replicated accumulator strategy (paper
// §3.2, Fig 5). FRA replicates each accumulator chunk on every processor
// even if no local input chunk will ever be aggregated into some of the
// copies, wasting memory and adding needless initialization and global
// combine work. SRA allocates a ghost chunk only on processors owning at
// least one input chunk that projects to the corresponding accumulator
// chunk.
//
// Tiling follows Fig 5: per-processor memory counters; when adding the next
// output chunk would overflow any processor that must allocate it, a new
// tile is opened (all processors advance to the new tile together) and every
// counter resets. One deviation from the figure as printed: the owning
// processor always allocates the accumulator chunk (it must, to combine and
// emit the final output), so its memory is accounted even when it has no
// projecting input chunk — Fig 5 lines 7–15 only charge the processors in
// So. Charging the owner as well keeps the per-tile memory invariant exact.
func (pl *Planner) planSRA(w *Workload, order []int32) (*Plan, error) {
	procs := pl.Machine.Procs
	capacity := pl.Machine.AccMemBytes
	sources := w.Sources()

	p := &Plan{
		Strategy: SRA,
		Machine:  pl.Machine,
		TileOf:   make([]int32, len(w.Outputs)),
		Home:     make([]int32, len(w.Outputs)),
	}
	remaining := make([]int64, procs)
	cur := -1
	var readSeen []map[int32]bool

	openTile := func() {
		p.Tiles = append(p.Tiles, newTile(procs))
		cur = len(p.Tiles) - 1
		readSeen = make([]map[int32]bool, procs)
		for i := range readSeen {
			readSeen[i] = make(map[int32]bool)
		}
		for i := range remaining {
			remaining[i] = capacity
		}
	}

	// allocSet returns the processors that must allocate the accumulator
	// chunk for output c: the owner plus every processor with at least one
	// projecting input chunk (Fig 5 step 5).
	allocSet := func(c int32) []int32 {
		seen := make(map[int32]bool)
		owner := w.Outputs[c].Node
		set := []int32{owner}
		seen[owner] = true
		for _, i := range sources[c] {
			q := w.Inputs[i].Node
			if !seen[q] {
				seen[q] = true
				set = append(set, q)
			}
		}
		return set
	}

	for _, c := range order {
		size := w.accSize(c)
		set := allocSet(c)
		if cur < 0 {
			openTile()
		} else {
			full := false
			for _, q := range set {
				if remaining[q] < size && remaining[q] < capacity {
					full = true
					break
				}
			}
			if full {
				openTile()
			}
		}
		for _, q := range set {
			remaining[q] -= size
		}
		t := &p.Tiles[cur]
		t.Outputs = append(t.Outputs, c)
		p.TileOf[c] = int32(cur)

		owner := w.Outputs[c].Node
		p.Home[c] = owner
		t.Locals[owner] = append(t.Locals[owner], c)
		for _, q := range set {
			if q != owner {
				t.Ghosts[q] = append(t.Ghosts[q], c)
			}
		}
		for _, i := range sources[c] {
			q := w.Inputs[i].Node
			t.Reads[q] = appendUniqueRead(t.Reads[q], readSeen[q], i)
		}
	}
	return p, nil
}
