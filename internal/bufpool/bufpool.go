// Package bufpool recycles payload buffers across the engine's hot paths:
// the TCP transport's frame reads, chunk encoding on the forward path, and
// the worker pipeline's decode+aggregate stages. Without it, every inbound
// frame and every forwarded output chunk allocates a fresh []byte that dies
// within microseconds, and at pipeline rates the allocator becomes the
// second bottleneck after the aggregation itself (the classic decoupled-
// execution observation: once compute is parallel, allocation churn is what
// serializes next, on the GC).
//
// Buffers are size-classed in powers of two, backed by one sync.Pool per
// class. Get(n) returns a buffer of length n whose first n bytes are
// UNSPECIFIED — callers must fully overwrite them (frame reads and appends
// do). Put returns a buffer for reuse; the caller must not touch it
// afterwards. Ownership is single-holder: a buffer flows from Get through
// exactly one consumer to Put (or is dropped to the GC, which is always
// safe — the pool is an optimization, never a correctness requirement).
//
// Reuse is observable as the adr_engine_pool_hits_total /
// adr_engine_pool_misses_total counter pair: hits are Gets served by a
// recycled buffer, misses are Gets that had to allocate. The pool also keeps
// a balance sheet: adr_bufpool_outstanding is the number of class-sized
// buffers currently checked out (Get minus Put minus Disown). A process at
// rest should read 0 (or its steady-state working set); a counter that only
// grows is a leaked-ownership bug, which is exactly what the engine's
// buffer-leak tests assert on.
package bufpool

import (
	"sync"

	"adr/internal/metrics"
)

var (
	hits   = metrics.Default.Counter("adr_engine_pool_hits_total")
	misses = metrics.Default.Counter("adr_engine_pool_misses_total")
	// outstanding tracks checked-out class-sized buffers. Requests outside
	// the pooled range never enter the balance (they are plain allocations
	// the GC owns from the start).
	outstanding = metrics.Default.Gauge("adr_bufpool_outstanding")
)

// Size classes: 1 KiB up to 64 MiB (rpc.MaxFrameBytes). Requests above the
// largest class allocate directly and are never pooled.
const (
	minClassBits = 10
	maxClassBits = 26
	numClasses   = maxClassBits - minClassBits + 1
)

var pools [numClasses]sync.Pool

// classFor returns the smallest class index whose buffers hold n bytes, or
// -1 when n is out of the pooled range.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	for c := 0; c < numClasses; c++ {
		if n <= 1<<(minClassBits+c) {
			return c
		}
	}
	return -1
}

// Get returns a buffer of length n (capacity may be larger). The contents
// are unspecified; the caller must overwrite all n bytes before reading
// them. Buffers outside the pooled size range are plain allocations.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		misses.Inc()
		return make([]byte, n)
	}
	outstanding.Inc()
	if v := pools[c].Get(); v != nil {
		hits.Inc()
		b := *(v.(*[]byte))
		return b[:n]
	}
	misses.Inc()
	return make([]byte, n, 1<<(minClassBits+c))
}

// isClassSized reports whether b's capacity is exactly one of the pool's
// size classes — the test both Put and Disown use to decide whether b is
// part of the outstanding balance.
func isClassSized(b []byte) bool {
	c := cap(b)
	if c < 1<<minClassBits || c&(c-1) != 0 {
		return false
	}
	cls := classFor(c)
	return cls >= 0 && 1<<(minClassBits+cls) == c
}

// Put recycles a buffer obtained from Get. Buffers whose capacity is not an
// exact size class (foreign allocations, subslices) are dropped to the GC.
// The caller must not use b after Put.
func Put(b []byte) {
	if !isClassSized(b) {
		return
	}
	outstanding.Dec()
	c := cap(b)
	b = b[:c]
	pools[classFor(c)].Put(&b)
}

// Disown removes a checked-out buffer from the outstanding balance without
// recycling it: the buffer's ownership passes to the GC (and to whatever
// long-lived structure retains it, e.g. a decoded result chunk whose item
// values alias the bytes). Use it when a buffer legitimately outlives the
// pool's get/put cycle, so leak accounting stays exact. The caller may keep
// using b; it just must never Put it afterwards.
func Disown(b []byte) {
	if isClassSized(b) {
		outstanding.Dec()
	}
}

// Stats returns the cumulative hit and miss counts, for tests and
// diagnostics; the same values are exported on /metrics.
func Stats() (h, m int64) {
	return hits.Value(), misses.Value()
}

// Outstanding returns the number of class-sized buffers currently checked
// out (Get minus Put minus Disown) — the balance the buffer-leak tests
// compare before and after a run. Exported on /metrics as
// adr_bufpool_outstanding.
func Outstanding() int64 {
	return outstanding.Value()
}
