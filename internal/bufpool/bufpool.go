// Package bufpool recycles payload buffers across the engine's hot paths:
// the TCP transport's frame reads, chunk encoding on the forward path, and
// the worker pipeline's decode+aggregate stages. Without it, every inbound
// frame and every forwarded output chunk allocates a fresh []byte that dies
// within microseconds, and at pipeline rates the allocator becomes the
// second bottleneck after the aggregation itself (the classic decoupled-
// execution observation: once compute is parallel, allocation churn is what
// serializes next, on the GC).
//
// Buffers are size-classed in powers of two, backed by one sync.Pool per
// class. Get(n) returns a buffer of length n whose first n bytes are
// UNSPECIFIED — callers must fully overwrite them (frame reads and appends
// do). Put returns a buffer for reuse; the caller must not touch it
// afterwards. Ownership is single-holder: a buffer flows from Get through
// exactly one consumer to Put (or is dropped to the GC, which is always
// safe — the pool is an optimization, never a correctness requirement).
//
// Reuse is observable as the adr_engine_pool_hits_total /
// adr_engine_pool_misses_total counter pair: hits are Gets served by a
// recycled buffer, misses are Gets that had to allocate.
package bufpool

import (
	"sync"

	"adr/internal/metrics"
)

var (
	hits   = metrics.Default.Counter("adr_engine_pool_hits_total")
	misses = metrics.Default.Counter("adr_engine_pool_misses_total")
)

// Size classes: 1 KiB up to 64 MiB (rpc.MaxFrameBytes). Requests above the
// largest class allocate directly and are never pooled.
const (
	minClassBits = 10
	maxClassBits = 26
	numClasses   = maxClassBits - minClassBits + 1
)

var pools [numClasses]sync.Pool

// classFor returns the smallest class index whose buffers hold n bytes, or
// -1 when n is out of the pooled range.
func classFor(n int) int {
	if n > 1<<maxClassBits {
		return -1
	}
	for c := 0; c < numClasses; c++ {
		if n <= 1<<(minClassBits+c) {
			return c
		}
	}
	return -1
}

// Get returns a buffer of length n (capacity may be larger). The contents
// are unspecified; the caller must overwrite all n bytes before reading
// them. Buffers outside the pooled size range are plain allocations.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := classFor(n)
	if c < 0 {
		misses.Inc()
		return make([]byte, n)
	}
	if v := pools[c].Get(); v != nil {
		hits.Inc()
		b := *(v.(*[]byte))
		return b[:n]
	}
	misses.Inc()
	return make([]byte, n, 1<<(minClassBits+c))
}

// Put recycles a buffer obtained from Get. Buffers whose capacity is not an
// exact size class (foreign allocations, subslices) are dropped to the GC.
// The caller must not use b after Put.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minClassBits || c&(c-1) != 0 {
		return
	}
	cls := classFor(c)
	if cls < 0 || 1<<(minClassBits+cls) != c {
		return
	}
	b = b[:c]
	pools[cls].Put(&b)
}

// Stats returns the cumulative hit and miss counts, for tests and
// diagnostics; the same values are exported on /metrics.
func Stats() (h, m int64) {
	return hits.Value(), misses.Value()
}
