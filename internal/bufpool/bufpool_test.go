package bufpool

import (
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	h0, m0 := Stats()
	b := Get(1500)
	if len(b) != 1500 {
		t.Fatalf("Get(1500) len = %d", len(b))
	}
	if cap(b) != 2048 {
		t.Fatalf("Get(1500) cap = %d, want 2048", cap(b))
	}
	// On a fresh pool this Get is a miss; with -count>1 a buffer left over
	// from an earlier run can make it a hit. Either way it must be counted.
	if h, m := Stats(); m == m0 && h == h0 {
		t.Error("first Get counted neither a hit nor a miss")
	}
	for i := range b {
		b[i] = byte(i)
	}
	Put(b)
	b2 := Get(2048)
	if cap(b2) != 2048 {
		t.Fatalf("Get(2048) cap = %d", cap(b2))
	}
	for i := 0; i < 64; i++ {
		if h, _ := Stats(); h != h0 {
			return
		}
		// The sync.Pool may drop the buffer between Put and Get (it does so
		// deliberately for a fraction of Puts under the race detector), so
		// keep cycling: with intact class bookkeeping a hit lands almost
		// immediately, while a systematic miss means Put filed the buffer
		// under the wrong class.
		Put(b2)
		b2 = Get(2048)
	}
	t.Error("Get after Put never counted a hit")
}

func TestSizeClassEdges(t *testing.T) {
	for _, n := range []int{1, 1024, 1025, 4096, 1 << 20} {
		b := Get(n)
		if len(b) != n {
			t.Errorf("Get(%d) len = %d", n, len(b))
		}
		if cap(b)&(cap(b)-1) != 0 {
			t.Errorf("Get(%d) cap %d not a power of two", n, cap(b))
		}
		Put(b)
	}
	// Oversized requests are plain allocations and must not panic on Put.
	huge := Get(1<<26 + 1)
	if len(huge) != 1<<26+1 {
		t.Fatalf("oversized Get len = %d", len(huge))
	}
	Put(huge)
	if Get(0) != nil {
		t.Error("Get(0) should be nil")
	}
	Put(nil)
	// Foreign buffers (non-class capacity) are silently dropped.
	Put(make([]byte, 100, 100))
}

// TestConcurrentGetPut exercises the pool from many goroutines under -race:
// buffers handed out concurrently must never be shared.
func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 512 + (g*37+i)%8192
				b := Get(n)
				for j := range b {
					b[j] = byte(g)
				}
				for j := range b {
					if b[j] != byte(g) {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}
