package adr_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adr/internal/doccheck"
)

// coreDocs are the documents `make docs` keeps healthy: links must resolve
// and DESIGN.md section references must point at sections that exist.
var coreDocs = []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "CHANGES.md", "ROADMAP.md"}

// TestDocsLinksResolve checks every relative markdown link and anchor in the
// core documents against the repository tree.
func TestDocsLinksResolve(t *testing.T) {
	for _, doc := range coreDocs {
		doccheck.CheckLinks(t, doc)
	}
}

// TestDocsDesignSectionRefs checks that every "DESIGN.md §N" cross-reference
// names a numbered section DESIGN.md actually has — the references drift
// when sections are appended.
func TestDocsDesignSectionRefs(t *testing.T) {
	for _, doc := range coreDocs {
		doccheck.CheckDesignSectionRefs(t, doc, "DESIGN.md")
	}
}

// TestGodocPackageComments is the godoc lint: every package in the module —
// the public root, every internal/* package and every cmd binary — must
// carry a substantive package comment (not a bare "Package x does y" stub),
// because DESIGN.md §2 promises the system is navigable from its godoc.
func TestGodocPackageComments(t *testing.T) {
	const minLen = 120 // characters of doc text; a one-line stub is ~40

	roots := []string{".", "internal", "cmd"}
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != "." {
					return filepath.SkipDir
				}
				return nil
			}
			dir := filepath.Dir(path)
			if seen[dir] || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			seen[dir] = true
			checkPackageDoc(t, dir, minLen)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// checkPackageDoc fails t unless some non-test file in dir carries a package
// doc comment of at least minLen characters.
func checkPackageDoc(t *testing.T, dir string, minLen int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			t.Errorf("%s: %v", filepath.Join(dir, name), err)
			continue
		}
		if f.Doc != nil {
			if n := len(strings.TrimSpace(f.Doc.Text())); n > best {
				best = n
			}
		}
	}
	if best == 0 {
		t.Errorf("package %s: no package doc comment", dir)
	} else if best < minLen {
		t.Errorf("package %s: package comment is %d chars, want >= %d (document what the package is for, not just its name)", dir, best, minLen)
	}
}
