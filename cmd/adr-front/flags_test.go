package main

import (
	"flag"
	"testing"

	"adr/internal/doccheck"
)

// TestFlagTableMatchesREADME pins the README's adr-front flag table to the
// front-end's registered flag set: every flag documented, every default exact.
func TestFlagTableMatchesREADME(t *testing.T) {
	doccheck.CheckFlagTable(t, "../../README.md", "adr-front", func(fs *flag.FlagSet) { registerFlags(fs) })
}
