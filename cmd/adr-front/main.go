// Command adr-front runs the ADR front-end process: it accepts client
// connections (cmd/adr-query, or anything speaking the newline-delimited
// JSON protocol), relays each range query to every back-end node's control
// port, and streams the merged output back to the client.
//
//	adr-front -listen :7000 -nodes :7200,:7201,:7202
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"adr/internal/frontend"
)

func main() {
	listen := flag.String("listen", ":7000", "client listen address")
	nodes := flag.String("nodes", "", "comma-separated back-end control addresses (required)")
	flag.Parse()

	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "adr-front: -nodes is required")
		os.Exit(2)
	}
	addrs := strings.Split(*nodes, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	srv, err := frontend.Start(*listen, addrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adr-front:", err)
		os.Exit(1)
	}
	fmt.Printf("adr-front: serving clients on %s, %d back-end nodes\n", srv.Addr(), len(addrs))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}
