// Command adr-front runs the ADR front-end process: it accepts client
// connections (cmd/adr-query, or anything speaking the newline-delimited
// JSON protocol), relays each range query to every back-end node's control
// port, and streams the merged output back to the client.
//
//	adr-front -listen :7000 -nodes :7200,:7201,:7202
//
// With -metrics-addr the front-end also serves /metrics, /debug/queries and
// /healthz over HTTP; -slow-query logs every query slower than the given
// duration to stderr.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adr/internal/frontend"
	"adr/internal/metrics"
)

// options holds every adr-front flag value. Flags register through
// registerFlags so the README flag table can be cross-checked by a test.
type options struct {
	listen      *string
	nodes       *string
	metricsAddr *string
	slowQuery   *time.Duration
	compress    *string
}

// registerFlags declares the front-end's full flag set on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		listen:      fs.String("listen", ":7000", "client listen address"),
		nodes:       fs.String("nodes", "", "comma-separated back-end control addresses (required)"),
		metricsAddr: fs.String("metrics-addr", "", "HTTP listen address for /metrics and /debug/queries (disabled when empty)"),
		slowQuery:   fs.Duration("slow-query", time.Second, "log queries slower than this (0 disables)"),
		compress:    fs.String("compress", "", "stamp this codec (none, flate or columnar) onto queries that don't set their own (empty defers to each node's -compress)"),
	}
}

func main() {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()
	listen, nodes, metricsAddr, slowQuery := opt.listen, opt.nodes, opt.metricsAddr, opt.slowQuery

	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "adr-front: -nodes is required")
		os.Exit(2)
	}
	addrs := strings.Split(*nodes, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	srv, err := frontend.StartOptions(*listen, addrs, frontend.Options{
		SlowQueryThreshold: *slowQuery,
		Codec:              *opt.compress,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adr-front:", err)
		os.Exit(1)
	}
	srv.Queries().Logger = log.New(os.Stderr, "adr-front: ", log.LstdFlags)
	fmt.Printf("adr-front: serving clients on %s, %d back-end nodes\n", srv.Addr(), len(addrs))
	if *opt.compress != "" {
		fmt.Printf("adr-front: stamping codec %q onto queries without one\n", *opt.compress)
	}

	if *metricsAddr != "" {
		ms, err := metrics.Serve(*metricsAddr, metrics.Default, srv.Queries())
		if err != nil {
			fmt.Fprintln(os.Stderr, "adr-front: metrics:", err)
			srv.Close()
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("adr-front: metrics on http://%s/metrics\n", ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	srv.Close()
}
