// Command adr-query submits a range query to an ADR front-end and prints
// the result cells (x,y,value CSV on stdout) plus execution statistics on
// stderr.
//
//	adr-query -front localhost:7000 -input sensor -output composite \
//	          -strategy DA -op max -cells 16 \
//	          -output-box 0,50,0,50 > composite.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adr/internal/apps"
	"adr/internal/frontend"
)

func main() {
	front := flag.String("front", "localhost:7000", "front-end address")
	input := flag.String("input", "", "input dataset (required)")
	output := flag.String("output", "", "output dataset (required)")
	strategy := flag.String("strategy", "FRA", "FRA | SRA | DA | HYBRID | AUTO (cost-model selection; case-insensitive)")
	op := flag.String("op", "sum", "sum | max | min | count | mean")
	cells := flag.Int("cells", 8, "raster cells per output chunk dimension")
	inBox := flag.String("input-box", "", "input range query: lox,hix,loy,hiy")
	outBox := flag.String("output-box", "", "output range query: lox,hix,loy,hiy")
	result := flag.String("result", "", "also store results back as this dataset")
	useExisting := flag.Bool("use-existing", false, "seed accumulators from the existing output dataset")
	busyRetries := flag.Int("busy-retries", 0, "resubmissions after a retryable failure (busy node, exhausted degraded retries); 0 uses the default 3, negative disables")
	flag.Parse()

	if *input == "" || *output == "" {
		fmt.Fprintln(os.Stderr, "adr-query: -input and -output are required")
		os.Exit(2)
	}
	spec := &frontend.QuerySpec{
		Input:         *input,
		Output:        *output,
		Strategy:      *strategy,
		ResultDataset: *result,
		App: frontend.AppSpec{
			Kind: "raster", Op: *op, CellsPerDim: *cells, UseExisting: *useExisting,
		},
	}
	var err error
	if spec.InputBox, err = parseBox(*inBox); err != nil {
		fatal(err)
	}
	if spec.OutputBox, err = parseBox(*outBox); err != nil {
		fatal(err)
	}

	client, err := frontend.Dial(*front)
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	client.BusyRetries = *busyRetries

	chunks, stats, err := client.Query(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Println("# x,y,value")
	cellsOut := 0
	for _, c := range chunks {
		for _, it := range c.Items {
			v, err := apps.DecodeValue(it.Value)
			if err != nil {
				fatal(err)
			}
			// Count cells hold raw tallies; every other op is in the raster
			// apps' fixed-point value space.
			if *op == "count" {
				fmt.Printf("%g,%g,%d\n", it.Coords[0], it.Coords[1], v)
			} else {
				fmt.Printf("%g,%g,%g\n", it.Coords[0], it.Coords[1], apps.FromFixedPoint(v))
			}
			cellsOut++
		}
	}
	fmt.Fprintf(os.Stderr,
		"adr-query: %d chunks, %d cells; read %.1f MB, comm %.1f MB, %d agg ops, %d ms\n",
		stats.Chunks, cellsOut,
		float64(stats.BytesRead)/1e6,
		float64(stats.BytesSent+stats.BytesRecv)/1e6,
		stats.AggOps, stats.ElapsedMS)
	if sel := stats.Selection; sel != nil {
		fmt.Fprintf(os.Stderr, "adr-query: auto selected %s (predicted %.3fs, actual %.3fs, node %d's calibration)\n",
			sel.Strategy, sel.PredictedSec, sel.ActualSec, sel.Node)
		for _, e := range sel.Estimates {
			fmt.Fprintf(os.Stderr, "adr-query:   %-6s predicted %.3fs (comm %.1f MB, %d tiles)\n",
				e.Strategy, e.PredictedSec, float64(e.CommBytes)/1e6, e.Tiles)
		}
	}
}

func parseBox(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad box value %q", p)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adr-query:", err)
	os.Exit(1)
}
