package main

import (
	"flag"
	"testing"

	"adr/internal/doccheck"
)

// TestFlagTableMatchesREADME pins the README's adr-node flag table to the
// daemon's registered flag set: every flag documented, every default exact.
func TestFlagTableMatchesREADME(t *testing.T) {
	doccheck.CheckFlagTable(t, "../../README.md", "adr-node", func(fs *flag.FlagSet) { registerFlags(fs) })
}
