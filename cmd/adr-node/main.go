// Command adr-node runs one ADR back-end node daemon: it opens the farm's
// per-disk stores, loads the shared dataset manifest, joins the TCP mesh of
// the parallel back-end, and serves query requests from the front-end.
//
// A 3-node back-end on one host:
//
//	adr-node -id 0 -mesh :7100,:7101,:7102 -control :7200 -data /srv/adr &
//	adr-node -id 1 -mesh :7100,:7101,:7102 -control :7201 -data /srv/adr &
//	adr-node -id 2 -mesh :7100,:7101,:7102 -control :7202 -data /srv/adr &
//
// With -metrics-addr each daemon also serves /metrics (Prometheus text, or
// JSON with ?format=json), /debug/queries (in-flight and recent queries) and
// /healthz over HTTP.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"adr/internal/backend"
	"adr/internal/metrics"
	"adr/internal/rpc"
)

func main() {
	id := flag.Int("id", -1, "this node's id (required)")
	mesh := flag.String("mesh", "", "comma-separated mesh addresses for all nodes (required)")
	control := flag.String("control", "", "control listen address for the front-end (required)")
	dataDir := flag.String("data", "", "farm directory (required)")
	accmem := flag.Int64("accmem", 0, "per-node accumulator memory bytes (default 8 MiB)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics and /debug/queries (disabled when empty)")
	sendTimeout := flag.Duration("send-timeout", 0, "mesh send timeout per peer; 0 uses the 30s default, negative disables")
	dialRetry := flag.Duration("dial-retry", 0, "how long mesh establishment retries unreachable peers (default 30s)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query execution deadline on this node; 0 disables")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "chunk cache budget in bytes (0 disables caching)")
	maxQueries := flag.Int("max-queries", 64, "max concurrently executing queries; excess queue (0 = unbounded)")
	workers := flag.Int("workers", 0, "decode+aggregate workers per query (0 = GOMAXPROCS)")
	flag.Parse()

	if *id < 0 || *mesh == "" || *control == "" || *dataDir == "" {
		fmt.Fprintln(os.Stderr, "adr-node: -id, -mesh, -control and -data are required")
		os.Exit(2)
	}
	addrs := strings.Split(*mesh, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if *id >= len(addrs) {
		fmt.Fprintf(os.Stderr, "adr-node: id %d outside mesh of %d nodes\n", *id, len(addrs))
		os.Exit(2)
	}

	srv, err := backend.Start(backend.Config{
		Node:         rpc.NodeID(*id),
		MeshAddrs:    addrs,
		ControlAddr:  *control,
		DataDir:      *dataDir,
		AccMemBytes:  *accmem,
		SendTimeout:  *sendTimeout,
		DialRetry:    *dialRetry,
		QueryTimeout: *queryTimeout,
		CacheBytes:   *cacheBytes,
		MaxQueries:   *maxQueries,
		Workers:      *workers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adr-node:", err)
		os.Exit(1)
	}
	fmt.Printf("adr-node %d: mesh up (%d nodes), control on %s\n", *id, len(addrs), srv.ControlAddr())
	if *cacheBytes > 0 {
		fmt.Printf("adr-node %d: chunk cache %d MiB, max %d concurrent queries\n", *id, *cacheBytes>>20, *maxQueries)
	}

	if *metricsAddr != "" {
		ms, err := metrics.Serve(*metricsAddr, metrics.Default, srv.Queries())
		if err != nil {
			fmt.Fprintln(os.Stderr, "adr-node: metrics:", err)
			srv.Close()
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("adr-node %d: metrics on http://%s/metrics\n", *id, ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("adr-node: shutting down")
	srv.Close()
}
