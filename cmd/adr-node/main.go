// Command adr-node runs one ADR back-end node daemon: it opens the farm's
// per-disk stores, loads the shared dataset manifest, joins the TCP mesh of
// the parallel back-end, and serves query requests from the front-end.
//
// A 3-node back-end on one host:
//
//	adr-node -id 0 -mesh :7100,:7101,:7102 -control :7200 -data /srv/adr &
//	adr-node -id 1 -mesh :7100,:7101,:7102 -control :7201 -data /srv/adr &
//	adr-node -id 2 -mesh :7100,:7101,:7102 -control :7202 -data /srv/adr &
//
// With -metrics-addr each daemon also serves /metrics (Prometheus text, or
// JSON with ?format=json), /debug/queries (in-flight and recent queries) and
// /healthz over HTTP.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adr/internal/backend"
	"adr/internal/chunk"
	"adr/internal/metrics"
	"adr/internal/rpc"
)

// options holds every adr-node flag value. Flags register through
// registerFlags so the README flag table can be cross-checked by a test.
type options struct {
	id           *int
	mesh         *string
	control      *string
	dataDir      *string
	accmem       *int64
	metricsAddr  *string
	sendTimeout  *time.Duration
	dialRetry    *time.Duration
	queryTimeout *time.Duration
	cacheBytes   *int64
	maxQueries   *int
	workers      *int
	batchWindow  *time.Duration
	maxBatch     *int
	fwdWindow    *int64
	fwdBudget    *int64
	degraded     *bool
	compress     *string
	calibFile    *string
}

// registerFlags declares the daemon's full flag set on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		id:           fs.Int("id", -1, "this node's id (required)"),
		mesh:         fs.String("mesh", "", "comma-separated mesh addresses for all nodes (required)"),
		control:      fs.String("control", "", "control listen address for the front-end (required)"),
		dataDir:      fs.String("data", "", "farm directory (required)"),
		accmem:       fs.Int64("accmem", 0, "per-node accumulator memory bytes (default 8 MiB)"),
		metricsAddr:  fs.String("metrics-addr", "", "HTTP listen address for /metrics and /debug/queries (disabled when empty)"),
		sendTimeout:  fs.Duration("send-timeout", 0, "mesh send timeout per peer; 0 uses the 30s default, negative disables"),
		dialRetry:    fs.Duration("dial-retry", 0, "how long mesh establishment retries unreachable peers (default 30s)"),
		queryTimeout: fs.Duration("query-timeout", 0, "per-query execution deadline on this node; 0 disables"),
		cacheBytes:   fs.Int64("cache-bytes", 256<<20, "chunk cache budget in bytes (0 disables caching)"),
		maxQueries:   fs.Int("max-queries", 64, "max concurrently executing queries; excess queue (0 = unbounded)"),
		workers:      fs.Int("workers", 0, "decode+aggregate workers per query (0 = GOMAXPROCS)"),
		batchWindow:  fs.Duration("batch-window", 0, "shared-scan batching window: queries admitted within it dedup overlapping reads (0 disables)"),
		maxBatch:     fs.Int("max-batch", 8, "max queries per shared-scan batch (effective with -batch-window > 0)"),
		fwdWindow:    fs.Int64("fwd-window-bytes", 0, "per-peer in-flight forwarded-byte window; senders block until receivers consume (0 disables)"),
		fwdBudget:    fs.Int64("fwd-budget-bytes", 0, "node-wide in-flight forwarded-byte budget across all peers (0 disables)"),
		degraded:     fs.Bool("degraded", false, "survive back-end node deaths by re-planning onto replica holders (needs -replicas >= 2 at load time; same value on every node)"),
		compress:     fs.String("compress", "none", "default codec for engine payloads on the wire: none, flate or columnar (query specs override)"),
		calibFile:    fs.String("calibration-file", "", "JSON file persisting this node's cost-model calibration across restarts (in-memory only when empty)"),
	}
}

func main() {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()
	id, mesh, control, dataDir := opt.id, opt.mesh, opt.control, opt.dataDir
	metricsAddr, cacheBytes, maxQueries := opt.metricsAddr, opt.cacheBytes, opt.maxQueries

	if *id < 0 || *mesh == "" || *control == "" || *dataDir == "" {
		fmt.Fprintln(os.Stderr, "adr-node: -id, -mesh, -control and -data are required")
		os.Exit(2)
	}
	addrs := strings.Split(*mesh, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if *id >= len(addrs) {
		fmt.Fprintf(os.Stderr, "adr-node: id %d outside mesh of %d nodes\n", *id, len(addrs))
		os.Exit(2)
	}
	codec, err := chunk.ParseCodec(*opt.compress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adr-node:", err)
		os.Exit(2)
	}

	srv, err := backend.Start(backend.Config{
		Node:            rpc.NodeID(*id),
		MeshAddrs:       addrs,
		ControlAddr:     *control,
		DataDir:         *dataDir,
		AccMemBytes:     *opt.accmem,
		SendTimeout:     *opt.sendTimeout,
		DialRetry:       *opt.dialRetry,
		QueryTimeout:    *opt.queryTimeout,
		CacheBytes:      *cacheBytes,
		MaxQueries:      *maxQueries,
		Workers:         *opt.workers,
		BatchWindow:     *opt.batchWindow,
		MaxBatch:        *opt.maxBatch,
		FwdWindowBytes:  *opt.fwdWindow,
		FwdBudgetBytes:  *opt.fwdBudget,
		Degraded:        *opt.degraded,
		Codec:           codec,
		CalibrationFile: *opt.calibFile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "adr-node:", err)
		os.Exit(1)
	}
	fmt.Printf("adr-node %d: mesh up (%d nodes), control on %s\n", *id, len(addrs), srv.ControlAddr())
	if *cacheBytes > 0 {
		fmt.Printf("adr-node %d: chunk cache %d MiB, max %d concurrent queries\n", *id, *cacheBytes>>20, *maxQueries)
	}
	if *opt.batchWindow > 0 {
		fmt.Printf("adr-node %d: shared scans on: window %v, max batch %d\n", *id, *opt.batchWindow, *opt.maxBatch)
	}
	if *opt.fwdWindow > 0 || *opt.fwdBudget > 0 {
		fmt.Printf("adr-node %d: forwarding flow control: window %d B/peer, budget %d B\n", *id, *opt.fwdWindow, *opt.fwdBudget)
	}
	if *opt.degraded {
		fmt.Printf("adr-node %d: degraded-mode execution on: peer deaths re-plan onto replica holders\n", *id)
	}
	if codec != chunk.CodecNone {
		fmt.Printf("adr-node %d: wire compression on: %s\n", *id, codec)
	}
	if *opt.calibFile != "" {
		fmt.Printf("adr-node %d: cost-model calibration persisted to %s\n", *id, *opt.calibFile)
	}

	if *metricsAddr != "" {
		ms, err := metrics.Serve(*metricsAddr, metrics.Default, srv.Queries())
		if err != nil {
			fmt.Fprintln(os.Stderr, "adr-node: metrics:", err)
			srv.Close()
			os.Exit(1)
		}
		defer ms.Close()
		fmt.Printf("adr-node %d: metrics on http://%s/metrics\n", *id, ms.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("adr-node: shutting down")
	srv.Close()
}
