// Command adr-load runs ADR's dataset loading pipeline (§2.2 of the paper)
// into a farm directory: partition items into chunks, decluster them across
// the per-disk stores with the Hilbert algorithm, write the chunks, build
// the index, and record everything in the farm manifest that the back-end
// node daemons read at startup.
//
// Load a point dataset from CSV (x,y,value per line; value is a float
// converted to the raster apps' fixed-point encoding):
//
//	adr-load -data /srv/adr -nodes 4 -name sensor \
//	         -bounds 0,100,0,100 -grid 16x16 -csv readings.csv
//
// Generate a synthetic point dataset:
//
//	adr-load -data /srv/adr -nodes 4 -name sensor \
//	         -bounds 0,100,0,100 -grid 16x16 -synthetic 100000 -seed 7
//
// Declare a regular-array output dataset (one empty chunk per grid cell):
//
//	adr-load -data /srv/adr -nodes 4 -name composite \
//	         -bounds 0,100,0,100 -grid 8x8 -output
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"adr/internal/apps"
	"adr/internal/chunk"
	"adr/internal/layout"
	"adr/internal/space"
)

func main() {
	dataDir := flag.String("data", "", "farm directory (required)")
	nodes := flag.Int("nodes", 1, "back-end node count")
	disks := flag.Int("disks", 1, "disks per node")
	name := flag.String("name", "", "dataset name (required)")
	boundsFlag := flag.String("bounds", "", "attribute space bounds: lox,hix,loy,hiy[,...] (required)")
	gridFlag := flag.String("grid", "8x8", "chunking grid, e.g. 16x16")
	csvPath := flag.String("csv", "", "load points from CSV (x,y,value per line)")
	synthetic := flag.Int("synthetic", 0, "generate N synthetic uniform points")
	seed := flag.Int64("seed", 1, "seed for -synthetic")
	output := flag.Bool("output", false, "declare a regular-array output dataset (empty chunks)")
	replicas := flag.Int("replicas", 1, "copies of each chunk, chained-declustered across disks (1 = unreplicated)")
	compress := flag.String("compress", "none", "store chunks compressed: none, flate or columnar")
	minRatio := flag.Float64("compress-min-ratio", 0, "store raw when compressed/raw exceeds this ratio (0 = default 0.9)")
	flag.Parse()

	if *dataDir == "" || *name == "" || *boundsFlag == "" {
		fatal(fmt.Errorf("-data, -name and -bounds are required"))
	}
	bounds, err := parseBounds(*boundsFlag)
	if err != nil {
		fatal(err)
	}
	gx, gy, err := parseGrid(*gridFlag)
	if err != nil {
		fatal(err)
	}
	if bounds.Dims != 2 {
		fatal(fmt.Errorf("adr-load currently loads 2-D datasets; got %d-D bounds", bounds.Dims))
	}
	grid, err := space.NewGrid(bounds, gx, gy)
	if err != nil {
		fatal(err)
	}

	// Open or create the farm; reconcile with any existing manifest.
	existing, existingDatasets, manifestErr := layout.LoadManifest(*dataDir)
	if manifestErr == nil {
		if existing.Nodes != *nodes || existing.DisksPerNode != *disks {
			fatal(fmt.Errorf("farm at %s has %d nodes x %d disks; flags say %dx%d",
				*dataDir, existing.Nodes, existing.DisksPerNode, *nodes, *disks))
		}
		for _, ds := range existingDatasets {
			if ds.Name == *name {
				fatal(fmt.Errorf("dataset %q already loaded", *name))
			}
		}
	}
	farm, err := layout.OpenFarm(*dataDir, *nodes, *disks)
	if err != nil {
		fatal(err)
	}
	defer farm.Close()

	var chunks []*chunk.Chunk
	switch {
	case *output:
		for c := 0; c < grid.NumCells(); c++ {
			chunks = append(chunks, &chunk.Chunk{Meta: chunk.Meta{MBR: grid.CellRect(c)}})
		}
	case *csvPath != "":
		items, err := readCSV(*csvPath, bounds)
		if err != nil {
			fatal(err)
		}
		chunks, err = layout.PartitionGrid(items, grid)
		if err != nil {
			fatal(err)
		}
	case *synthetic > 0:
		rng := rand.New(rand.NewSource(*seed))
		items := make([]chunk.Item, *synthetic)
		for i := range items {
			items[i] = chunk.Item{
				Coord: space.Pt(
					bounds.Lo[0]+rng.Float64()*(bounds.Hi[0]-bounds.Lo[0]),
					bounds.Lo[1]+rng.Float64()*(bounds.Hi[1]-bounds.Lo[1]),
				),
				Value: apps.EncodeValue(apps.FixedPoint(rng.NormFloat64() * 100)),
			}
		}
		chunks, err = layout.PartitionGrid(items, grid)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("choose one of -csv, -synthetic or -output"))
	}

	codec, err := chunk.ParseCodec(*compress)
	if err != nil {
		fatal(err)
	}
	loader := &layout.Loader{Farm: farm, Replicas: *replicas, Codec: codec, MinRatio: *minRatio}
	sp := space.AttrSpace{Name: *name + "-space", Bounds: bounds}
	ds, err := loader.Load(*name, sp, chunks)
	if err != nil {
		fatal(err)
	}
	all := append(existingDatasets, ds)
	if err := layout.SaveManifest(*dataDir, *nodes, *disks, all); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %q: %d chunks, %d bytes, %d datasets in manifest\n",
		*name, len(ds.Chunks), ds.TotalBytes(), len(all))
	if codec != chunk.CodecNone {
		stored := ds.StoredTotalBytes()
		logical := ds.TotalBytes()
		if logical > 0 {
			fmt.Printf("compressed (%s): %d bytes on disk, ratio %.3f\n",
				codec, stored, float64(stored)/float64(logical))
		}
	}
}

func parseBounds(s string) (space.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts)%2 != 0 {
		return space.Rect{}, fmt.Errorf("bounds need lo,hi pairs")
	}
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return space.Rect{}, fmt.Errorf("bad bound %q", p)
		}
		vals[i] = v
	}
	for i := 0; i < len(vals); i += 2 {
		if vals[i] >= vals[i+1] {
			return space.Rect{}, fmt.Errorf("bound pair %g,%g not increasing", vals[i], vals[i+1])
		}
	}
	return space.R(vals...), nil
}

func parseGrid(s string) (int, int, error) {
	parts := strings.SplitN(s, "x", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("grid must look like 16x16")
	}
	gx, err1 := strconv.Atoi(parts[0])
	gy, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || gx < 1 || gy < 1 {
		return 0, 0, fmt.Errorf("bad grid %q", s)
	}
	return gx, gy, nil
}

func readCSV(path string, bounds space.Rect) ([]chunk.Item, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var items []chunk.Item
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("%s:%d: want x,y,value", path, line)
		}
		x, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		y, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		v, err3 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("%s:%d: parse error", path, line)
		}
		p := space.Pt(x, y)
		if !bounds.Contains(p) {
			return nil, fmt.Errorf("%s:%d: point %v outside bounds %v", path, line, p, bounds)
		}
		items = append(items, chunk.Item{Coord: p, Value: apps.EncodeValue(apps.FixedPoint(v))})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("%s: no data", path)
	}
	return items, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adr-load:", err)
	os.Exit(1)
}
