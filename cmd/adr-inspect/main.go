// Command adr-inspect examines a farm directory: the dataset catalog, the
// per-disk chunk distribution the declustering produced, and per-dataset
// index statistics. It answers the operational questions ADR's dataset and
// indexing services raise — is placement balanced, is the index selective —
// without starting any daemon.
//
//	adr-inspect -data /srv/adr
//	adr-inspect -data /srv/adr -dataset sensor -query 0,50,0,50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adr/internal/chunk"
	"adr/internal/layout"
	"adr/internal/space"
)

func main() {
	dataDir := flag.String("data", "", "farm directory (required)")
	dataset := flag.String("dataset", "", "inspect one dataset in detail")
	queryFlag := flag.String("query", "", "probe the index: lox,hix,loy,hiy")
	flag.Parse()
	if *dataDir == "" {
		fatal(fmt.Errorf("-data is required"))
	}
	m, datasets, err := layout.LoadManifest(*dataDir)
	if err != nil {
		fatal(err)
	}
	if err := inspect(os.Stdout, *dataDir, m, datasets, *dataset, *queryFlag); err != nil {
		fatal(err)
	}
}

// inspect renders the whole report to w; split from main so tests can run
// it over degenerate farms and assert the output stays finite.
func inspect(w io.Writer, dataDir string, m *layout.Manifest, datasets []*layout.Dataset, only, queryFlag string) error {
	fmt.Fprintf(w, "farm %s: %d nodes x %d disks, %d datasets\n\n",
		dataDir, m.Nodes, m.DisksPerNode, len(datasets))

	for _, ds := range datasets {
		if only != "" && ds.Name != only {
			continue
		}
		describe(w, ds, m.Nodes*m.DisksPerNode)
		if queryFlag != "" {
			if err := probe(w, ds, queryFlag); err != nil {
				return err
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

func describe(w io.Writer, ds *layout.Dataset, ndisks int) {
	fmt.Fprintf(w, "dataset %q: space %q %v\n", ds.Name, ds.Space.Name, ds.Space.Bounds)
	var bytes int64
	var stored int64
	var compressed int
	var items int64
	perDisk := make([]int64, ndisks)
	perNode := map[int32]int64{}
	for _, c := range ds.Chunks {
		bytes += c.Bytes
		stored += c.StoredOrRaw()
		if c.StoredBytes > 0 {
			compressed++
		}
		items += int64(c.Items)
		if int(c.Disk) < ndisks {
			perDisk[c.Disk] += c.Bytes
		}
		perNode[c.Node] += c.Bytes
	}
	fmt.Fprintf(w, "  %d chunks, %d items, %.2f MB\n", len(ds.Chunks), items, float64(bytes)/1e6)
	switch {
	case ds.Codec == chunk.CodecNone:
		// Raw layout: nothing to report.
	case bytes > 0:
		fmt.Fprintf(w, "  compression (%s): %.2f MB on disk vs %.2f MB logical, ratio %.3f (%d/%d chunks compressed)\n",
			ds.Codec, float64(stored)/1e6, float64(bytes)/1e6,
			float64(stored)/float64(bytes), compressed, len(ds.Chunks))
	default:
		// A codec with no logical bytes (empty dataset, or every chunk
		// empty) has no meaningful ratio — say so instead of printing NaN.
		fmt.Fprintf(w, "  compression (%s): no payload bytes, ratio not meaningful\n", ds.Codec)
	}

	// Placement balance.
	var maxDisk, minDisk int64 = 0, 1 << 62
	used := 0
	for _, b := range perDisk {
		if b > 0 {
			used++
		}
		if b > maxDisk {
			maxDisk = b
		}
		if b < minDisk {
			minDisk = b
		}
	}
	switch {
	case used > 0 && bytes > 0:
		mean := float64(bytes) / float64(used)
		fmt.Fprintf(w, "  placement: %d/%d disks used, per-disk %.2f-%.2f MB (max/mean %.2f)\n",
			used, ndisks, float64(minDisk)/1e6, float64(maxDisk)/1e6, float64(maxDisk)/mean)
	case len(ds.Chunks) == 0:
		fmt.Fprintf(w, "  placement: empty dataset, 0/%d disks used\n", ndisks)
	default:
		// Chunks exist but none carry bytes on a tracked disk: a balance
		// ratio would divide by zero, so report the shape without one.
		fmt.Fprintf(w, "  placement: %d chunks carry no payload bytes, 0/%d disks used\n",
			len(ds.Chunks), ndisks)
	}
	fmt.Fprintf(w, "  index: %d entries\n", ds.Index.Len())
}

func probe(w io.Writer, ds *layout.Dataset, queryFlag string) error {
	parts := strings.Split(queryFlag, ",")
	vals := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return fmt.Errorf("bad query value %q", p)
		}
		vals[i] = v
	}
	if len(vals)%2 != 0 {
		return fmt.Errorf("query needs lo,hi pairs")
	}
	box := space.R(vals...)
	sel := ds.Select(box)
	var bytes int64
	disks := map[int32]bool{}
	for _, c := range sel {
		bytes += c.Bytes
		disks[c.Disk] = true
	}
	fmt.Fprintf(w, "  query %v: %d chunks, %.2f MB across %d disks (%.0f%% of dataset)\n",
		box, len(sel), float64(bytes)/1e6, len(disks),
		100*float64(len(sel))/float64(max(1, len(ds.Chunks))))
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adr-inspect:", err)
	os.Exit(1)
}
