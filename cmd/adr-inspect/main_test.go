package main

import (
	"bytes"
	"strings"
	"testing"

	"adr/internal/chunk"
	"adr/internal/layout"
	"adr/internal/space"
)

// TestInspectDegenerateFarm runs the full report over a farm whose datasets
// are degenerate — one with no chunks at all, one whose chunks carry zero
// payload bytes under a codec — and asserts every line stays finite. The old
// describe() divided bytes by the used-disk count and stored by logical
// bytes without reporting the empty cases, so such farms produced no
// placement line at all (and a naive fix would have printed NaN ratios).
func TestInspectDegenerateFarm(t *testing.T) {
	dir := t.TempDir()
	sp := space.AttrSpace{Name: "grid", Bounds: space.R(0, 100, 0, 100)}
	empty := &layout.Dataset{Name: "empty", Space: sp}
	hollow := &layout.Dataset{
		Name:  "hollow",
		Space: sp,
		Codec: chunk.CodecColumnar,
		Chunks: []chunk.Meta{
			{ID: 0, Dataset: "hollow", MBR: space.R(0, 10, 0, 10), Bytes: 0, Items: 0, Disk: 0, Node: 0},
			{ID: 1, Dataset: "hollow", MBR: space.R(10, 20, 0, 10), Bytes: 0, Items: 0, Disk: 1, Node: 0},
		},
	}
	if err := layout.SaveManifest(dir, 1, 2, []*layout.Dataset{empty, hollow}); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}
	m, datasets, err := layout.LoadManifest(dir)
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}

	var out bytes.Buffer
	if err := inspect(&out, dir, m, datasets, "", "0,50,0,50"); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	got := out.String()
	for _, bad := range []string{"NaN", "Inf", "+Inf", "-Inf"} {
		if strings.Contains(got, bad) {
			t.Fatalf("inspect output contains %s:\n%s", bad, got)
		}
	}
	for _, want := range []string{
		`dataset "empty"`,
		"placement: empty dataset, 0/2 disks used",
		`dataset "hollow"`,
		"compression (columnar): no payload bytes, ratio not meaningful",
		"placement: 2 chunks carry no payload bytes, 0/2 disks used",
		"query",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, got)
		}
	}
}

// TestProbeBadQuery exercises probe's error paths (they used to os.Exit the
// process via fatal, untestable and fatal to any embedding caller).
func TestProbeBadQuery(t *testing.T) {
	ds := &layout.Dataset{Name: "d", Space: space.AttrSpace{Name: "s", Bounds: space.R(0, 1, 0, 1)}}
	var out bytes.Buffer
	if err := probe(&out, ds, "0,nope"); err == nil {
		t.Fatal("probe accepted a non-numeric query value")
	}
	if err := probe(&out, ds, "0,1,2"); err == nil {
		t.Fatal("probe accepted an odd-arity query")
	}
}
