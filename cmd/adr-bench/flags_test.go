package main

import (
	"flag"
	"testing"

	"adr/internal/doccheck"
)

// TestFlagTableMatchesREADME pins the README's adr-bench flag table to the
// driver's registered flag set: every flag documented, every default exact.
func TestFlagTableMatchesREADME(t *testing.T) {
	doccheck.CheckFlagTable(t, "../../README.md", "adr-bench", func(fs *flag.FlagSet) { registerFlags(fs) })
}
