// Command adr-bench regenerates the paper's evaluation: Table 1 and every
// panel of Figures 8 and 9 of "Querying Very Large Multi-dimensional
// Datasets in ADR" (SC 1999), on the simulated 128-node IBM SP.
//
// Usage:
//
//	adr-bench                          # everything, paper-scale
//	adr-bench -exp table1
//	adr-bench -exp fig8  -scaling fixed
//	adr-bench -exp fig9a               # comm volume, fixed input
//	adr-bench -exp fig9d               # computation time, scaled input
//	adr-bench -quick                   # 1/8-size datasets, 3 proc counts
//	adr-bench -csv                     # machine-readable output
//	adr-bench -procs 8,32,128 -seed 7 -accmem 8388608
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"adr/internal/emulator"
	"adr/internal/experiments"
	"adr/internal/plan"
)

// options holds every adr-bench flag value. Flags register through
// registerFlags so the README flag table can be cross-checked by a test.
type options struct {
	exp     *string
	scaling *string
	procs   *string
	seed    *int64
	accmem  *int64
	quick   *bool
	csv     *bool
	hybrid  *bool
	diskBW  *float64
	seekMS  *float64
	netBW   *float64
	latMS   *float64
}

// registerFlags declares the benchmark driver's full flag set on fs.
func registerFlags(fs *flag.FlagSet) *options {
	return &options{
		exp:     fs.String("exp", "all", "experiment: table1 | fig8 | fig9a | fig9b | fig9c | fig9d | all"),
		scaling: fs.String("scaling", "both", "fig8 scaling: fixed | scaled | both"),
		procs:   fs.String("procs", "8,16,32,64,128", "comma-separated processor counts"),
		seed:    fs.Int64("seed", 1, "emulator seed"),
		accmem:  fs.Int64("accmem", 8<<20, "per-processor accumulator memory (bytes)"),
		quick:   fs.Bool("quick", false, "reduced sweep (1/8-size datasets, 3 proc counts)"),
		csv:     fs.Bool("csv", false, "emit CSV instead of aligned tables"),
		hybrid:  fs.Bool("hybrid", false, "include the HYBRID strategy (paper future work)"),
		diskBW:  fs.Float64("diskbw", 0, "disk bandwidth MB/s (default 10, the SP model)"),
		seekMS:  fs.Float64("seekms", -1, "disk positioning cost ms (default 10)"),
		netBW:   fs.Float64("netbw", 0, "link bandwidth MB/s per direction (default 110)"),
		latMS:   fs.Float64("latms", -1, "per-message latency ms (default 0.5)"),
	}
}

func main() {
	opt := registerFlags(flag.CommandLine)
	flag.Parse()
	exp, scaling, procsFlag := opt.exp, opt.scaling, opt.procs
	seed, accmem, quick, csv, hybrid := opt.seed, opt.accmem, opt.quick, opt.csv, opt.hybrid
	diskBW, seekMS, netBW, latMS := opt.diskBW, opt.seekMS, opt.netBW, opt.latMS

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed
	cfg.AccMemBytes = *accmem
	if !*quick || *procsFlag != "8,16,32,64,128" {
		procs, err := parseProcs(*procsFlag)
		if err != nil {
			fatal(err)
		}
		if *quick {
			// -quick with explicit -procs keeps the shrink factor but uses
			// the requested counts.
			cfg.Procs = procs
		} else {
			cfg.Procs = procs
		}
	}
	if *hybrid {
		cfg.Strategies = append(cfg.Strategies, plan.Hybrid)
	}
	if *diskBW > 0 {
		cfg.DiskBWBytes = *diskBW * 1e6
	}
	if *seekMS >= 0 {
		cfg.DiskSeekSec = *seekMS / 1e3
	}
	if *netBW > 0 {
		cfg.NetBWBytes = *netBW * 1e6
	}
	if *latMS >= 0 {
		cfg.NetLatencySec = *latMS / 1e3
	}

	switch *exp {
	case "table1":
		runTable1(cfg)
	case "fig8":
		runFig8(cfg, *scaling, *csv)
	case "fig9a":
		runFig9(cfg, "a", *csv)
	case "fig9b":
		runFig9(cfg, "b", *csv)
	case "fig9c":
		runFig9(cfg, "c", *csv)
	case "fig9d":
		runFig9(cfg, "d", *csv)
	case "select":
		runSelect(cfg)
	case "plans":
		runPlans(cfg)
	case "all":
		runTable1(cfg)
		runFig8(cfg, "both", *csv)
		for _, panel := range []string{"a", "b", "c", "d"} {
			runFig9(cfg, panel, *csv)
		}
		runSelect(cfg)
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

// runPlans prints the structural comparison behind §3's analysis: tiles,
// ghost allocations, forwarded chunks and repeated retrievals per strategy.
func runPlans(cfg experiments.Config) {
	fmt.Println("== Plan structure per strategy (fixed input) ==")
	fmt.Printf("%-5s %6s %8s %8s %10s %10s %10s\n",
		"App", "procs", "strat", "tiles", "ghosts", "forwards", "rereads")
	for _, app := range emulator.Apps {
		for _, procs := range cfg.Procs {
			for _, strat := range cfg.Strategies {
				pt, err := cfg.RunCell(app, strat, procs, experiments.Fixed)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("%-5s %6d %8s %8d %10d %10d %10d\n",
					app, procs, strat, pt.Tiles, pt.GhostChunks, pt.Forwards, pt.RereadInputs)
			}
		}
	}
	fmt.Println()
}

// runSelect exercises the §6 cost-model goal: for every (app, procs) cell,
// print which strategy the analytic model selects, which one the simulator
// finds fastest, and the cost of a wrong pick.
func runSelect(cfg experiments.Config) {
	fmt.Println("== Strategy selection (paper §6): cost-model pick vs simulated best ==")
	fmt.Printf("%-5s %6s %10s %10s %14s %12s\n", "App", "procs", "model", "simulated", "chosen-time(s)", "best-time(s)")
	for _, app := range emulator.Apps {
		for _, procs := range cfg.Procs {
			pts := map[plan.Strategy]experiments.Point{}
			best := plan.FRA
			for _, strat := range []plan.Strategy{plan.FRA, plan.SRA, plan.DA} {
				pt, err := cfg.RunCell(app, strat, procs, experiments.Fixed)
				if err != nil {
					fatal(err)
				}
				pts[strat] = pt
				if pt.ExecSec < pts[best].ExecSec {
					best = strat
				}
			}
			chosen, err := cfg.SelectStrategy(app, procs, experiments.Fixed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-5s %6d %10s %10s %14.2f %12.2f\n",
				app, procs, chosen, best, pts[chosen].ExecSec, pts[best].ExecSec)
		}
	}
	fmt.Println()
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no processor counts")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "adr-bench:", err)
	os.Exit(1)
}

func runTable1(cfg experiments.Config) {
	rows, err := cfg.Table1()
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Table 1: application characteristics (measured from the emulators) ==")
	fmt.Printf("%-5s %15s %14s %12s %10s %14s %12s %16s\n",
		"App", "InputChunks", "InputSize", "OutChunks", "OutSize", "AvgFanIn", "AvgFanOut", "I-LR-GC-OH(ms)")
	for _, r := range rows {
		fmt.Printf("%-5s %6dK - %4dK %6.1f-%5.1fGB %12d %8.0fMB %6.0f - %5.0f %6.1f - %4.1f %8.0f-%.0f-%.0f-%.0f\n",
			r.App,
			r.MinChunks/1000, r.MaxChunks/1000,
			float64(r.MinBytes)/1e9, float64(r.MaxBytes)/1e9,
			r.OutChunks, float64(r.OutBytes)/1e6,
			r.MinFanIn, r.MaxFanIn,
			r.MinFanOut, r.MaxFanOut,
			r.CostsMs[0], r.CostsMs[1], r.CostsMs[2], r.CostsMs[3])
	}
	fmt.Println()
}

func runFig8(cfg experiments.Config, which string, csv bool) {
	for _, sc := range []experiments.Scaling{experiments.Fixed, experiments.Scaled} {
		if which != "both" && which != sc.String() {
			continue
		}
		fmt.Printf("== Figure 8 (%s input): query execution time (sec) ==\n", sc)
		for _, app := range emulator.Apps {
			pts, err := cfg.Sweep(app, sc)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("-- %s --\n", app)
			if csv {
				fmt.Print(experiments.CSV(pts))
			} else {
				fmt.Print(experiments.FormatTable(pts, func(p experiments.Point) float64 {
					return p.ExecSec
				}, "(s)"))
			}
		}
		fmt.Println()
	}
}

func runFig9(cfg experiments.Config, panel string, csv bool) {
	var sc experiments.Scaling
	var title string
	var metric func(experiments.Point) float64
	var unit string
	switch panel {
	case "a":
		sc, title = experiments.Fixed, "Figure 9(a): per-processor communication volume (MB), fixed input"
		metric = func(p experiments.Point) float64 { return float64(p.MaxCommBytes) / 1e6 }
		unit = "(MB)"
	case "b":
		sc, title = experiments.Scaled, "Figure 9(b): per-processor communication volume (MB), scaled input"
		metric = func(p experiments.Point) float64 { return float64(p.MaxCommBytes) / 1e6 }
		unit = "(MB)"
	case "c":
		sc, title = experiments.Fixed, "Figure 9(c): per-processor computation time (sec), fixed input"
		metric = func(p experiments.Point) float64 { return p.MaxComputeSec }
		unit = "(s)"
	case "d":
		sc, title = experiments.Scaled, "Figure 9(d): per-processor computation time (sec), scaled input"
		metric = func(p experiments.Point) float64 { return p.MaxComputeSec }
		unit = "(s)"
	}
	fmt.Println("== " + title + " ==")
	for _, app := range emulator.Apps {
		pts, err := cfg.Sweep(app, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("-- %s --\n", app)
		if csv {
			fmt.Print(experiments.CSV(pts))
		} else {
			fmt.Print(experiments.FormatTable(pts, metric, unit))
		}
	}
	fmt.Println()
}
